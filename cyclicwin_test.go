package cyclicwin

import (
	"reflect"
	"testing"

	"cyclicwin/internal/corpus"
)

func TestMachineQuickstart(t *testing.T) {
	for _, s := range Schemes {
		m := NewMachine(s, 8)
		var result uint32
		m.Spawn("worker", func(e *Env) {
			e.Call(func(e *Env) {
				e.SetRet(e.Arg(0) * 2)
			}, 21)
			result = e.Ret()
		})
		m.Run()
		if result != 42 {
			t.Errorf("%v: result = %d, want 42", s, result)
		}
		if m.Counters().Saves == 0 {
			t.Errorf("%v: no save instructions executed", s)
		}
	}
}

func TestMachineStreams(t *testing.T) {
	m := NewMachineOptions(SP, 16, Options{Policy: WorkingSet})
	s, err := m.NewStream("pipe", 4)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	m.Spawn("producer", func(e *Env) {
		s.PutString(e, "hello")
		s.Close(e)
	})
	m.Spawn("consumer", func(e *Env) {
		for {
			b, ok := s.Get(e)
			if !ok {
				return
			}
			got = append(got, b)
		}
	})
	m.Run()
	if string(got) != "hello" {
		t.Errorf("got %q", got)
	}
	if m.Cycles() == 0 {
		t.Error("no cycles charged")
	}
}

func TestSpellPipelineFacade(t *testing.T) {
	cfg := SpellConfig{
		M: 4, N: 4,
		Source:        corpus.ScaledDraft(2000),
		MainDict:      corpus.ScaledMainDict(4001),
		ForbiddenDict: corpus.ScaledForbiddenDict(4001),
	}
	want := SpellCheckText(cfg.Source, cfg.MainDict, cfg.ForbiddenDict)

	m := NewMachine(SNP, 12)
	p, err := m.NewSpellPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got := p.Misspelled()
	if len(want) == 0 {
		t.Fatal("reference found nothing")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pipeline %v != reference %v", got, want)
	}
}

func TestAssemblyFacade(t *testing.T) {
	p, err := Assemble(`
start:
	mov 6, %o0
	smul %o0, %o0, %o0
	ta 0
`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(SP, 8)
	cpu, err := m.RunProgram(p, "start", 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Reg(8); got != 36 {
		t.Errorf("%%o0 = %d, want 36", got)
	}
	if d := Disassemble(p.Words[0], 0x1000); d == "" {
		t.Error("empty disassembly")
	}
}

func TestSpawnProgramThreads(t *testing.T) {
	m := NewMachine(SP, 16)
	p, err := Assemble(`
start:
	mov 'o', %o0
	ta 2
	yield
	mov 'k', %o0
	ta 2
	ta 0
`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m.LoadProgram(p)
	var console []byte
	m.SpawnProgram("asm", p.Entry("start"), 0x700000, &console)
	m.Spawn("go", func(e *Env) { e.Work(10) })
	m.Run()
	if string(console) != "ok" {
		t.Errorf("console = %q, want ok", console)
	}
}

func TestCycleModelExposed(t *testing.T) {
	cm := CycleModel()
	if cm["SwitchBaseSP"] != 93 || cm["SwitchBaseSNP"] != 113 || cm["SwitchBaseNS"] != 80 {
		t.Errorf("cycle model constants drifted: %v", cm)
	}
	if cm["UnderflowTrapInPlace"] == 0 {
		t.Error("missing trap cost")
	}
}

func TestTracingOption(t *testing.T) {
	m := NewMachineOptions(SP, 8, Options{TraceLimit: 64})
	m.Spawn("t", func(e *Env) {
		e.Call(func(e *Env) {})
	})
	m.Run()
	tr := m.Trace()
	if tr == nil {
		t.Fatal("Trace() nil with TraceLimit set")
	}
	if tr.Total() == 0 {
		t.Error("no events recorded")
	}
	if NewMachine(SP, 8).Trace() != nil {
		t.Error("Trace() non-nil without TraceLimit")
	}
}

func TestActivityOption(t *testing.T) {
	rec := &ActivityRecorder{}
	m := NewMachineOptions(SP, 16, Options{Activity: rec})
	m.Spawn("t", func(e *Env) {
		e.Call(func(e *Env) { e.Call(func(e *Env) {}) })
	})
	m.Run()
	if got := rec.MeanPerThread(); got != 3 {
		t.Errorf("activity per thread = %g, want 3 (depths 0..2)", got)
	}
}

func TestTrapTransferOption(t *testing.T) {
	run := func(k int) uint64 {
		m := NewMachineOptions(SP, 8, Options{TrapTransfer: k})
		m.Spawn("t", func(e *Env) {
			var deep func(e *Env)
			deep = func(e *Env) {
				if e.Arg(0) > 0 {
					e.Call(deep, e.Arg(0)-1)
				}
			}
			e.Call(deep, 20)
		})
		m.Run()
		return m.Counters().OverflowTraps
	}
	if t1, t4 := run(1), run(4); t4*2 >= t1 {
		t.Errorf("transfer=4 took %d traps vs %d at transfer=1", t4, t1)
	}
}

func TestResidentAndWake(t *testing.T) {
	m := NewMachine(SP, 16)
	var sleeper *TCB
	sleeper = m.Spawn("sleeper", func(e *Env) { e.Block() })
	m.Spawn("waker", func(e *Env) {
		if !m.Resident(sleeper) {
			t.Error("sleeper's windows should be resident under SP")
		}
		m.Wake(sleeper)
	})
	m.Run()
}
