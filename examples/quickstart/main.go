// Quickstart: two guest threads share an 8-window register file under
// the paper's SP scheme. Each thread makes procedure calls through the
// simulated windows; the scheduler switches between them when they
// block on a shared stream, and — because windows stay resident — most
// switches transfer nothing.
package main

import (
	"fmt"

	"cyclicwin"
)

func main() {
	m := cyclicwin.NewMachine(cyclicwin.SP, 8)
	pipe, err := m.NewStream("pipe", 2)
	if err != nil {
		panic(err)
	}

	// The producer computes squares with a real procedure call per item
	// (a save/restore pair on the window file) and streams them out.
	m.Spawn("producer", func(e *cyclicwin.Env) {
		for i := uint32(1); i <= 5; i++ {
			e.Call(func(e *cyclicwin.Env) {
				e.SetRet(e.Arg(0) * e.Arg(0))
			}, i)
			pipe.Put(e, byte(e.Ret()))
		}
		pipe.Close(e)
	})

	m.Spawn("consumer", func(e *cyclicwin.Env) {
		for {
			b, ok := pipe.Get(e)
			if !ok {
				return
			}
			fmt.Printf("square: %d\n", b)
		}
	})

	if err := m.Run(); err != nil {
		panic(err)
	}

	c := m.Counters()
	fmt.Printf("\nsimulated cycles:    %d\n", m.Cycles())
	fmt.Printf("context switches:    %d (%d moved no window at all)\n",
		c.Switches, c.ZeroTransferSwitches)
	fmt.Printf("save/restore pairs:  %d\n", c.Saves)
	fmt.Printf("window traps:        %d overflow, %d underflow\n",
		c.OverflowTraps, c.UnderflowTraps)
}
