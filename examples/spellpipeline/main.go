// Spellpipeline runs the paper's evaluation workload — the seven-thread
// multi-threaded spell checker of Figure 10 — on its full 40,500-byte
// synthetic LaTeX draft under all three window-management schemes, and
// prints the comparison that motivates the paper: identical output,
// identical save counts, very different context-switch costs.
package main

import (
	"fmt"

	"cyclicwin"
	"cyclicwin/internal/corpus"
)

func main() {
	cfg := cyclicwin.SpellConfig{
		M: 4, N: 4, // high concurrency, medium granularity
		Source:        corpus.Draft(),
		MainDict:      corpus.MainDict(),
		ForbiddenDict: corpus.ForbiddenDict(),
	}

	fmt.Printf("workload: %d-byte draft, 2 x %d-byte dictionaries, M=%d N=%d, 8 windows\n\n",
		len(cfg.Source), len(cfg.MainDict), cfg.M, cfg.N)
	fmt.Printf("%-6s %14s %10s %12s %10s %12s\n",
		"scheme", "cycles", "switches", "avg sw cyc", "traps", "misspelled")

	var firstWords []string
	for _, scheme := range cyclicwin.Schemes {
		m := cyclicwin.NewMachine(scheme, 8)
		p, err := m.NewSpellPipeline(cfg)
		if err != nil {
			panic(err)
		}
		if err := m.Run(); err != nil {
			panic(err)
		}
		c := m.Counters()
		words := p.Misspelled()
		fmt.Printf("%-6v %14d %10d %12.1f %10d %12d\n",
			scheme, m.Cycles(), c.Switches, c.AvgSwitchCycles(),
			c.OverflowTraps+c.UnderflowTraps, len(words))
		if firstWords == nil {
			firstWords = words
		}
	}

	fmt.Printf("\nfirst misspellings found (identical under every scheme):\n")
	for i, w := range firstWords {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(firstWords)-8)
			break
		}
		fmt.Printf("  %s\n", w)
	}
}
