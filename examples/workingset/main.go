// Workingset demonstrates Section 4.6: applying the virtual-memory
// working-set concept to register windows. With only 7 windows for 7
// threads, plain FIFO scheduling thrashes the window file; enqueuing
// awoken threads with resident windows at the front of the ready queue
// keeps the working set in the file and recovers most of the sharing
// schemes' advantage.
package main

import (
	"fmt"

	"cyclicwin"
	"cyclicwin/internal/corpus"
)

func main() {
	cfg := cyclicwin.SpellConfig{
		M: 1, N: 1, // fine granularity: switches dominate
		Source:        corpus.ScaledDraft(10000),
		MainDict:      corpus.ScaledMainDict(12001),
		ForbiddenDict: corpus.ScaledForbiddenDict(12001),
	}

	fmt.Println("spell checker, SP scheme, fine granularity (M=N=1)")
	fmt.Printf("%8s %16s %16s %10s\n", "windows", "FIFO cycles", "WS cycles", "WS gain")
	for _, windows := range []int{6, 7, 8, 10, 16, 32} {
		run := func(policy cyclicwin.Policy) uint64 {
			m := cyclicwin.NewMachineOptions(cyclicwin.SP, windows, cyclicwin.Options{Policy: policy})
			if _, err := m.NewSpellPipeline(cfg); err != nil {
				panic(err)
			}
			if err := m.Run(); err != nil {
				panic(err)
			}
			return m.Cycles()
		}
		fifo := run(cyclicwin.FIFO)
		ws := run(cyclicwin.WorkingSet)
		fmt.Printf("%8d %16d %16d %9.1f%%\n", windows, fifo, ws,
			100*(1-float64(ws)/float64(fifo)))
	}
	fmt.Println("\nThe gain is largest around 7-8 windows — exactly the paper's")
	fmt.Println("Figure 15 — and vanishes once the whole working set fits.")
}
