// Tracewindows makes the paper's algorithm visible: it runs two threads
// on a tiny 6-window file with event tracing on, then prints the event
// log with a per-event map of the window file. Watch the in-place
// underflow (Section 3.2): on "restore/UNF" the current-window marker
// does not move and no window is transferred — the caller materialises
// exactly where the callee was.
package main

import (
	"fmt"
	"os"

	"cyclicwin"
)

func main() {
	m := cyclicwin.NewMachineOptions(cyclicwin.SP, 6, cyclicwin.Options{TraceLimit: 256})

	deep := func(e *cyclicwin.Env) {
		var rec func(e *cyclicwin.Env)
		rec = func(e *cyclicwin.Env) {
			if n := e.Arg(0); n > 0 {
				e.Call(rec, n-1)
			}
			e.Yield() // suspend at the deepest point, windows resident
		}
		e.Call(rec, 6) // deeper than the file: overflow traps guaranteed
	}

	m.Spawn("alpha", deep)
	m.Spawn("beta", deep)
	m.Run()

	fmt.Println("event trace (SP scheme, 6 windows, two threads 7 frames deep):")
	fmt.Println()
	m.Trace().Render(os.Stdout)
	fmt.Println()
	m.Trace().Summarise(os.Stdout)

	c := m.Counters()
	fmt.Printf("\nunderflow traps: %d, windows they transferred: %d (always exactly one each —\n",
		c.UnderflowTraps, c.TrapRestores)
	fmt.Println("the in-place handler never spills anyone, which is the paper's key idea)")
}
