// Asmdemo runs machine code on the simulated processor: a recursive
// Fibonacci in SPARC-subset assembly whose call chain is far deeper than
// the window file, under each management scheme, and then two assembly
// threads cooperating through a memory mailbox while sharing the window
// file under SP.
package main

import (
	"fmt"
	"log"

	"cyclicwin"
)

const fibSrc = `
start:
	mov 18, %o0
	call fib
	ta 0

fib:
	save %sp, -96, %sp
	cmp %i0, 2
	bl done
	sub %i0, 1, %o0
	call fib
	mov %o0, %l0
	sub %i0, 2, %o0
	call fib
	add %l0, %o0, %i0
done:
	restore
	ret
`

const pingSrc = `
start:
	set 0x4000, %l0
	clr %l1
loop:
	inc %l1
	st %l1, [%l0]
	mov 'p', %o0
	ta 2
	yield
	cmp %l1, 3
	bl loop
	ta 0
`

const pongSrc = `
start:
	set 0x4000, %l0
loop:
	ld [%l0], %l1
	mov 'q', %o0
	ta 2
	yield
	cmp %l1, 3
	bl loop
	ta 0
`

func main() {
	prog, err := cyclicwin.Assemble(fibSrc, 0x1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fib(18) in assembly, recursion depth 18 through the window file:")
	fmt.Printf("%-6s %8s %10s %10s %12s %12s\n",
		"scheme", "windows", "result", "cycles", "ovf traps", "unf traps")
	for _, scheme := range cyclicwin.Schemes {
		for _, windows := range []int{4, 8} {
			m := cyclicwin.NewMachine(scheme, windows)
			cpu, err := m.RunProgram(prog, "start", 50_000_000)
			if err != nil {
				log.Fatal(err)
			}
			c := m.Counters()
			fmt.Printf("%-6v %8d %10d %10d %12d %12d\n",
				scheme, windows, cpu.Reg(8), m.Cycles(), c.OverflowTraps, c.UnderflowTraps)
		}
	}

	fmt.Println("\ntwo assembly threads sharing windows under SP:")
	m := cyclicwin.NewMachine(cyclicwin.SP, 16)
	ping, err := cyclicwin.Assemble(pingSrc, 0x1000)
	if err != nil {
		log.Fatal(err)
	}
	pong, err := cyclicwin.Assemble(pongSrc, 0x2000)
	if err != nil {
		log.Fatal(err)
	}
	m.LoadProgram(ping)
	m.LoadProgram(pong)
	var console []byte
	m.SpawnProgram("ping", ping.Entry("start"), 0x700000, &console)
	m.SpawnProgram("pong", pong.Entry("start"), 0x780000, &console)
	m.Run()
	c := m.Counters()
	fmt.Printf("console: %s\n", console)
	fmt.Printf("switches: %d, of which %d moved no window (windows stayed resident)\n",
		c.Switches, c.ZeroTransferSwitches)
}
