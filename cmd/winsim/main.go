// Command winsim runs the paper's experiments on the simulated
// register-window machine and prints the corresponding table or figure.
//
// Usage:
//
//	winsim -exp list                            # catalog of experiments
//	winsim -exp table1|table2|fig11|...|all [-full] [-windows 4,8,...]
//
// By default experiments run on a reduced workload; -full uses the
// paper's exact input sizes (40,500-byte draft, 50,001-byte
// dictionaries). Figure sweeps execute their cells concurrently on a
// simsvc worker pool (-parallel=false forces the serial path; both
// produce byte-identical output). With -cachedir, completed cells are
// stored on disk and reused across invocations. With -cluster, sweep
// cells shard across a set of winsimd workers by content hash (see
// DESIGN.md §10) and still print byte-identical figures. With -trace FILE, every
// cell records its window-management events and the run writes one
// Chrome trace_event JSON file (open it in chrome://tracing or
// Perfetto); tracing only observes, so the printed tables are
// unchanged.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"cyclicwin/internal/check"
	"cyclicwin/internal/cluster"
	"cyclicwin/internal/core"
	"cyclicwin/internal/fault"
	"cyclicwin/internal/harness"
	"cyclicwin/internal/isa"
	"cyclicwin/internal/netfault"
	"cyclicwin/internal/obs"
	"cyclicwin/internal/regwin"
	"cyclicwin/internal/sched"
	"cyclicwin/internal/simsvc"
)

func main() {
	exp := flag.String("exp", "fig11", "experiment name (see -exp list), or all")
	full := flag.Bool("full", false, "use the paper's full input sizes")
	windowsFlag := flag.String("windows", "", "comma-separated window counts (default: the paper's sweep)")
	csvDir := flag.String("csv", "", "also write figure data as CSV files into this directory")
	parallel := flag.Bool("parallel", true, "run sweep cells concurrently on a worker pool")
	workers := flag.Int("workers", 0, "pool size when -parallel (0 = GOMAXPROCS)")
	cacheDir := flag.String("cachedir", "", "reuse completed cells from this on-disk result store")
	clusterAddrs := flag.String("cluster", "", "comma-separated winsimd worker URLs; sweep cells shard across them by content hash")
	clusterDiscover := flag.Bool("clusterdiscover", true, "with -cluster: ask the listed workers for the full member list")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	maxCycles := flag.Uint64("maxcycles", 0, "per-simulation cycle budget; a cell exceeding it aborts with a diagnostic (0 = off)")
	faultSeed := flag.Int64("faultseed", 0, "arm the chaos injector with this seed: benign perturbations fire throughout every cell (0 = off)")
	traceOut := flag.String("trace", "", "record every cell's window events and write a Chrome trace_event JSON file (forces the serial runner)")
	checkRun := flag.Bool("check", false, "run the differential model checker instead of an experiment: all schemes vs the Reference oracle over small configurations")
	checkDepth := flag.Int("checkdepth", 4, "with -check: exhaustive action-sequence length per configuration (0 skips the exhaustive pass)")
	checkRuns := flag.Int("checkruns", 8, "with -check: seeded random sequences per configuration variant")
	checkLen := flag.Int("checklen", 400, "with -check: length of each random sequence")
	checkSeed := flag.Uint64("checkseed", 1, "with -check: base seed for the random sequences")
	tierFlag := flag.String("tier", "", "interpreter tier for guest machine code run in-process: block, fast or slow (default block)")
	netfaultSpec := flag.String("netfault", "", "with -cluster: inject seeded network faults into outbound requests, e.g. \"seed=42,drop=0.1,delay=30ms:0.25,corrupt=0.05\" (empty = off)")
	budget := flag.Duration("budget", 0, "with -cluster: per-sweep routing deadline; cells past it skip the network and run inline (0 = none)")
	leakCheck := flag.Bool("leakcheck", false, "verify at exit that no goroutines outlive the run (chaos-harness assertion)")
	policyFlag := flag.String("policy", "", "override the scheduling policy of every sweep cell: FIFO, WS or PRIO (default: each experiment's own)")
	quantum := flag.Uint64("quantum", 0, "preemptive time-slice in cycles applied to every sweep cell (0 = the paper's non-preemptive scheduling)")
	flag.Parse()

	if *leakCheck {
		// Registered before any worker pool or cluster node exists, so
		// this runs after their deferred Closes: anything still alive then
		// is a genuine leak.
		baseline := runtime.NumGoroutine()
		defer func() {
			deadline := time.Now().Add(3 * time.Second)
			n := runtime.NumGoroutine()
			for n > baseline && time.Now().Before(deadline) {
				if tr, ok := http.DefaultTransport.(*http.Transport); ok {
					tr.CloseIdleConnections() // idle keep-alives are not leaks
				}
				time.Sleep(25 * time.Millisecond)
				n = runtime.NumGoroutine()
			}
			if n > baseline {
				fmt.Fprintf(os.Stderr, "winsim: leakcheck: %d goroutines at exit, %d at start\n", n, baseline)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "winsim: leakcheck: clean (%d goroutines)\n", n)
		}()
	}

	if *tierFlag != "" {
		t, err := isa.ParseTier(*tierFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
			os.Exit(2)
		}
		isa.SetDefaultTier(t)
	}

	if *checkRun {
		os.Exit(runCheck(*checkDepth, *checkRuns, *checkLen, *checkSeed))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *exp == "list" {
		fmt.Printf("%-10s %s\n", "name", "description")
		for _, e := range simsvc.Experiments() {
			fmt.Printf("%-10s %s\n", e.Name, e.Description)
		}
		return
	}

	sz := harness.QuickSizes
	if *full {
		sz = harness.FullSizes
	}
	windows := harness.WindowCounts
	if *windowsFlag != "" {
		windows = nil
		for _, f := range strings.Split(*windowsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 2 || n > regwin.MaxWindows {
				fmt.Fprintf(os.Stderr, "winsim: bad window count %q\n", f)
				os.Exit(2)
			}
			windows = append(windows, n)
		}
	}

	// The runner executes figure cells: serially in-process, or fanned
	// out across a pool whose cache deduplicates cells shared between
	// figures (fig11/fig12/fig13 reuse the same sweep). The watchdog
	// and chaos flags force the serial path: their results must not be
	// answered from (or stored into) a cache keyed without them.
	runner := harness.RunSerial
	var chrome *obs.ChromeTrace
	if *traceOut != "" {
		// Tracing forces the serial path too: one tracer per cell, one
		// Chrome process per cell, all in one file in sweep order.
		chrome = &obs.ChromeTrace{}
	}
	if *maxCycles > 0 || *faultSeed != 0 || chrome != nil {
		if *clusterAddrs != "" {
			fmt.Fprintln(os.Stderr, "winsim: -cluster is incompatible with -maxcycles, -faultseed and -trace (their results must not come from a cache)")
			os.Exit(2)
		}
		*parallel = false
		runner = serialRunner(*maxCycles, *faultSeed, chrome)
	}
	switch {
	case *clusterAddrs != "":
		// Distributed sweep: shard cells across the winsimd workers by
		// content hash, peer-filling this process's cache from theirs.
		// Cells whose every owner is unreachable run inline, so a sweep
		// always completes. Determinism makes the routing invisible: the
		// printed figures are byte-identical to the serial path.
		members := clusterWorkers(*clusterAddrs, *clusterDiscover)
		cache, err := simsvc.NewCache(0, *cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
			os.Exit(1)
		}
		nf, err := netfault.FromSpec(*netfaultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
			os.Exit(2)
		}
		nodeCfg := cluster.NodeConfig{
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "winsim: "+format+"\n", args...)
			},
		}
		if nf != nil {
			nodeCfg.Transport = nf
			fmt.Fprintf(os.Stderr, "winsim: netfault armed: %s\n", *netfaultSpec)
		}
		node := cluster.NewNode("", members, nodeCfg)
		defer node.Close()
		node.StartProber()
		cache.SetRemote(node.PeerCache())
		coord := cluster.NewCoordinator(node, cluster.CoordinatorConfig{Cache: cache, SweepTimeout: *budget})
		runner = coord.Runner()
		defer func() {
			snap := node.Metrics().Snapshot()
			var routed uint64
			for _, n := range snap.Routed {
				routed += n
			}
			fmt.Fprintf(os.Stderr, "winsim: cluster — %d cells routed across %d workers, %d retried, %d inline, %d peer fills\n",
				routed, len(members), snap.Retried, snap.Local, snap.PeerFills)
			fmt.Fprintf(os.Stderr, "winsim: resilience — %d peer rejects, %d hedges (%d won), %d cells past the sweep budget\n",
				snap.PeerRejects, snap.Hedges, snap.HedgeWins, snap.DeadlineExpired)
			if nf != nil {
				st := nf.Stats()
				fmt.Fprintf(os.Stderr, "winsim: netfault — %d requests: %d dropped, %d delayed, %d cut, %d 5xx, %d truncated, %d corrupted\n",
					st.Requests, st.Dropped, st.Delayed, st.Cut, st.Injected, st.Truncated, st.Corrupted)
			}
		}()
	case *parallel:
		cache, err := simsvc.NewCache(0, *cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
			os.Exit(1)
		}
		pool := simsvc.NewPool(simsvc.PoolConfig{Workers: *workers, Cache: cache})
		defer pool.Close()
		runner = pool.Runner()
	}

	// -policy and -quantum rewrite every sweep cell before it reaches
	// the runner. Rewritten specs hash differently, so caches and
	// cluster routing stay sound; the defaults leave every cell
	// untouched and the published figures byte-identical.
	if *policyFlag != "" || *quantum > 0 {
		var pol sched.Policy
		havePol := false
		if *policyFlag != "" {
			p, err := sched.ParsePolicy(*policyFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
				os.Exit(2)
			}
			pol, havePol = p, true
		}
		inner := runner
		runner = func(cells []harness.CellSpec) []harness.Result {
			rewritten := make([]harness.CellSpec, len(cells))
			for i, c := range cells {
				if havePol {
					c.Policy = pol
				}
				if *quantum > 0 {
					c.Quantum = *quantum
				}
				rewritten[i] = c
			}
			return inner(rewritten)
		}
	}

	run := func(name string) {
		e, ok := simsvc.LookupExperiment(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "winsim: unknown experiment %q (try -exp list)\n", name)
			os.Exit(2)
		}
		output, csv := e.Run(sz, windows, runner)
		fmt.Print(output)
		if e.Figure && *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range simsvc.ExperimentNames() {
			run(name)
		}
	} else {
		run(*exp)
	}

	if chrome != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
			os.Exit(1)
		}
		if err := chrome.Encode(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "winsim: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *traceOut)
	}
}

// clusterWorkers expands the -cluster flag into a worker list: the
// comma-separated addresses, plus (with -clusterdiscover) every member
// the reachable ones report, so a single seed address is enough to
// address a whole cluster.
func clusterWorkers(addrs string, discover bool) []string {
	seen := map[string]bool{}
	var out []string
	add := func(addr string) {
		if addr = cluster.NormalizeAddr(addr); addr != "" && !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	seeds := strings.Split(addrs, ",")
	for _, s := range seeds {
		add(s)
	}
	if discover {
		for _, s := range seeds {
			s = cluster.NormalizeAddr(s)
			if s == "" {
				continue
			}
			members, err := cluster.Discover(s, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "winsim: discovering members via %s: %v\n", s, err)
				continue
			}
			for _, m := range members {
				add(m)
			}
		}
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "winsim: -cluster lists no usable worker addresses")
		os.Exit(2)
	}
	return out
}

// runCheck runs the differential model checker over its windows 3..8 ×
// threads 1..4 grid with the runtime invariant audit armed: every
// scheme is compared against the Reference oracle after every action,
// exhaustively at -checkdepth and with -checkruns seeded random soaks
// per configuration variant. The first divergence prints a minimized
// reproduction and exits 1.
func runCheck(depth, runs, length int, seed uint64) int {
	core.SetInvariantChecks(true)
	cfg := check.DefaultGrid()
	cfg.ExhaustiveLen = depth
	cfg.RandomRuns = runs
	cfg.RandomLen = length
	cfg.Seed = seed
	cfg.Log = func(format string, args ...interface{}) {
		fmt.Printf(format+"\n", args...)
	}
	if err := check.RunGrid(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "winsim: DIVERGENCE FOUND\n%v\n", err)
		return 1
	}
	fmt.Println("winsim: all schemes agree with the Reference oracle; no invariant violations")
	return 0
}

// serialRunner executes cells serially under any combination of the
// cycle-budget watchdog, the seeded chaos injector and the event
// tracer (one Chrome process per cell, in sweep order). A cell that
// trips the watchdog or faults terminates the run with its diagnostic
// (exit 1) — runaway or faulty guests abort instead of hanging the
// sweep.
func serialRunner(maxCycles uint64, faultSeed int64, chrome *obs.ChromeTrace) harness.Runner {
	pid := 0
	return func(cells []harness.CellSpec) []harness.Result {
		out := make([]harness.Result, len(cells))
		for i, c := range cells {
			if c.Threads > 0 {
				// T3 chain cells have no chaos points or spell trace
				// hooks; the watchdog does not apply either.
				out[i] = c.Run()
				continue
			}
			var inj *fault.Injector
			if faultSeed != 0 {
				inj = fault.NewInjector(faultSeed + int64(i))
				inj.Enable(fault.PointPreempt, 1000)
				inj.Enable(fault.PointSpuriousTrap, 1500)
				inj.Enable(fault.PointFlushReload, 2000)
			}
			opts := harness.SpellOpts{
				Config: core.Config{Windows: c.Windows},
				Scheme: c.Scheme, Policy: c.Policy, Behavior: c.Behavior, Sizes: c.Sizes,
				MaxCycles: maxCycles, Chaos: inj,
			}
			var tr *obs.Tracer
			if chrome != nil {
				tr = obs.NewTracer(0)
				opts.OnManager = func(m core.Manager) { tr.Attach(m) }
				opts.OnKernel = func(k *sched.Kernel) {
					for _, t := range k.Threads() {
						tr.SetThreadName(t.Core.ID, t.Name())
					}
				}
			}
			r, err := harness.RunSpellWith(opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "winsim: cell %v/w%d/%s: %v\n",
					c.Scheme, c.Windows, c.Behavior.Name, err)
				os.Exit(1)
			}
			if tr != nil {
				pid++
				chrome.AddProcess(pid, fmt.Sprintf("%v/w%d/%s/%s",
					c.Scheme, c.Windows, c.Policy, c.Behavior.Name), tr.Snapshot())
			}
			out[i] = r
		}
		return out
	}
}
