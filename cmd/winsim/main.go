// Command winsim runs the paper's experiments on the simulated
// register-window machine and prints the corresponding table or figure.
//
// Usage:
//
//	winsim -exp table1|table2|fig11|fig12|fig13|fig14|fig15|ablation [-full] [-windows 4,8,...]
//
// By default experiments run on a reduced workload; -full uses the
// paper's exact input sizes (40,500-byte draft, 50,001-byte
// dictionaries).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cyclicwin/internal/harness"
)

func main() {
	exp := flag.String("exp", "fig11", "experiment: table1, table2, fig11..fig15, ablation, activity, tail, transfer, hw, all")
	full := flag.Bool("full", false, "use the paper's full input sizes")
	windowsFlag := flag.String("windows", "", "comma-separated window counts (default: the paper's sweep)")
	csvDir := flag.String("csv", "", "also write figure data as CSV files into this directory")
	flag.Parse()

	sz := harness.QuickSizes
	if *full {
		sz = harness.FullSizes
	}
	windows := harness.WindowCounts
	if *windowsFlag != "" {
		windows = nil
		for _, f := range strings.Split(*windowsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 2 || n > 32 {
				fmt.Fprintf(os.Stderr, "winsim: bad window count %q\n", f)
				os.Exit(2)
			}
			windows = append(windows, n)
		}
	}

	figure := func(name string, f harness.Figure) {
		f.Render(os.Stdout)
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name+".csv")
		file, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
			os.Exit(1)
		}
		defer file.Close()
		if err := f.WriteCSV(file); err != nil {
			fmt.Fprintf(os.Stderr, "winsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	run := func(name string) {
		out := os.Stdout
		switch name {
		case "table1":
			harness.RunTable1(sz).Render(out)
		case "table2":
			harness.RenderTable2(out, harness.RunTable2())
		case "fig11":
			figure(name, harness.RunFig11(sz, windows))
		case "fig12":
			figure(name, harness.RunFig12(sz, windows))
		case "fig13":
			figure(name, harness.RunFig13(sz, windows))
		case "fig14":
			figure(name, harness.RunFig14(sz, windows))
		case "fig15":
			figure(name, harness.RunFig15(sz, windows))
		case "ablation":
			renderAblations(sz, windows)
		case "activity":
			harness.RenderActivity(out, harness.RunActivity(sz))
		case "tail":
			harness.RenderTail(out, harness.RunTail(sz, 8))
		case "transfer":
			harness.RenderTransferSweep(out, harness.RunTransferSweep(sz, 8, []int{1, 2, 4}), 8)
		case "hw":
			harness.RenderHWProjection(out, harness.RunHWProjection(sz, []int{8, 16, 32}))
		default:
			fmt.Fprintf(os.Stderr, "winsim: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintln(out)
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "fig11", "fig12", "fig13", "fig14",
			"fig15", "ablation", "activity", "tail", "transfer", "hw"} {
			run(name)
		}
		return
	}
	run(*exp)
}

func renderAblations(sz harness.Sizes, windows []int) {
	fmt.Println("Ablation A: in-situ vs flushing context switch (Section 4.4, high-medium, 16 windows)")
	for _, a := range harness.RunAblationFlush(sz, 16) {
		fmt.Printf("  %-4s in-situ %12d cycles   flush-all %12d cycles   (flush/in-situ = %.3f)\n",
			a.Scheme, a.InSituCycles, a.FlushAll, float64(a.FlushAll)/float64(a.InSituCycles))
	}
	fmt.Println("Ablation B: SNP simple vs searching window allocation (Section 4.2, high-fine)")
	for _, a := range harness.RunAblationSearchAlloc(sz, windows) {
		fmt.Printf("  windows %2d: simple %12d cycles (%7d switch spills)   search %12d cycles (%7d switch spills)\n",
			a.Windows, a.SimpleCycles, a.SimpleSpills, a.Search, a.SearchSpills)
	}
	fmt.Println("Ablation C: cost of restore-instruction emulation (Section 4.3, high-fine, 6 windows)")
	for _, a := range harness.RunAblationRestoreEmulation(sz, 6) {
		fmt.Printf("  %-4s underflow traps %9d   emulation cost %9d cycles   (%.4f%% of runtime)\n",
			a.Scheme, a.UnderflowTraps, a.EmulationCost, 100*float64(a.EmulationCost)/float64(a.TotalCycles))
	}
}
