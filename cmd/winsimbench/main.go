// Command winsimbench is the sustained-load generator for the serving
// layer: it drives a winsimd server (-url) or an in-process pool at a
// configurable request rate and concurrency with named workload mixes,
// measures submit-to-answer latency through stats.Distribution,
// asserts SLOs (p99 ceiling, sustained rate, zero dropped metric
// events) and writes a BENCH_serve.json trajectory CI can track.
//
// Usage:
//
//	winsimbench [-url http://host:8091] [-mix hot|cold|traced|faulty|mixed]
//	            [-rps 500] [-concurrency 32] [-duration 5s] [-scrapers 2]
//	            [-metrics sharded|locked] [-coalesce] [-workers N]
//	            [-slo-p99 50ms] [-findmax] [-rampfactor 1.6] [-maxrps 100000]
//	            [-ab] [-out BENCH_serve.json]
//
// Modes:
//
//   - Single run (default): drive one configuration at -rps for
//     -duration; exit 1 on SLO breach or dropped metric events.
//   - -findmax: ramp the rate by -rampfactor per step until the SLO
//     breaks; report the highest SLO-compliant rate.
//   - -ab: in-process only; run the -findmax ramp twice — first the
//     pre-change serving path (single-mutex metrics recorder,
//     coalescing off), then the sharded wait-free path — and write
//     both trajectories side by side. This is the experiment behind
//     the "sharded sustains strictly higher max-SLO-compliant RPS"
//     acceptance check.
//
// The scrapers are the adversarial load: each one hammers the metrics
// snapshot and the Prometheus render in a loop, which on the legacy
// recorder holds the job-accounting mutex through a full
// quantile/mean render — exactly the contention this benchmark
// exists to expose. Every scrape also checks the conservation
// invariant (accepted == queued+running+terminal); a violation counts
// as a dropped metric event and fails the run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cyclicwin/internal/simsvc"
	"cyclicwin/internal/stats"
)

// ---------------------------------------------------------------------
// Workload mixes.

// benchSizes keeps individual cells cheap so the bench measures the
// serving path, not the simulator.
const (
	benchDraft = 600
	benchDict  = 901
)

// coldBase offsets the MaxCycles watchdog so cold keys are distinct
// without ever tripping the budget (quick cells run ~1e5 cycles).
const coldBase = 1 << 40

// specFor builds the i-th request's spec for a mix. Mixes:
//
//	hot    — one fixed spec; after warmup every request is a cache hit
//	cold   — every request a distinct spec (distinct content hash)
//	traced — cold specs with event tracing armed
//	faulty — a 1-cycle budget, failing deterministically and fast
//	mixed  — hot/cold/traced/faulty round-robin with varied spec sizes
func specFor(mix string, i uint64) simsvc.JobSpec {
	base := simsvc.JobSpec{
		Experiment: simsvc.ExperimentCell,
		Scheme:     "NS", Windows: 8, Behavior: "high-fine",
		Draft: benchDraft, Dict: benchDict,
	}
	switch mix {
	case "hot":
		return base
	case "cold":
		base.MaxCycles = coldBase + i
		return base
	case "traced":
		base.MaxCycles = coldBase + i
		base.Trace = true
		return base
	case "faulty":
		base.MaxCycles = 1
		return base
	case "mixed":
		switch i % 8 {
		case 0, 1, 2, 3: // half the traffic cache-hot
			return base
		case 4:
			base.MaxCycles = coldBase + i
			base.Windows = 4 + int(i%4)*8 // mixed spec sizes: 4..28 windows
			base.Scheme = []string{"NS", "SNP", "SP"}[i%3]
			return base
		case 5:
			base.MaxCycles = coldBase + i
			base.Draft = benchDraft * 2
			base.Dict = benchDict*2 + 1
			return base
		case 6:
			base.MaxCycles = coldBase + i
			base.Trace = true
			return base
		default:
			base.MaxCycles = 1
			return base
		}
	default:
		log.Fatalf("winsimbench: unknown mix %q (want hot, cold, traced, faulty or mixed)", mix)
		return base
	}
}

// ---------------------------------------------------------------------
// Engines: where the requests go.

// engine abstracts the target: an in-process pool or a winsimd server.
// submit blocks until the job is terminal and classifies the outcome;
// scrape performs one adversarial metrics read and reports whether the
// scraped view was conserved; snapshot returns the service counters.
type engine interface {
	submit(ctx context.Context, spec simsvc.JobSpec) outcome
	scrape() bool
	snapshot() (simsvc.MetricsSnapshot, error)
	close()
}

type outcome struct {
	ok    bool // answered (done), including cache hits
	fault bool // deterministic job failure (faulty mix does this on purpose)
	shed  bool // 429 / ErrPoolSaturated
	err   bool // anything else
}

// conserved checks the multi-word invariant every scrape must see:
// pinning all of a job's lifecycle events to one metrics shard means
// accepted == queued + running + done + failed + canceled in every
// coherent view, and the gauges can never go negative (a negative
// uint64 shows up as a value near 2^64).
func conserved(m simsvc.MetricsSnapshot) bool {
	const torn = uint64(1) << 62
	if m.JobsQueued > torn || m.JobsRunning > torn {
		return false
	}
	return m.JobsAccepted == m.JobsQueued+m.JobsRunning+m.JobsDone+m.JobsFailed+m.JobsCanceled
}

// inprocEngine drives a pool directly; the pre/post-change serving
// paths are selected by PoolConfig.LegacyMetrics and Cache.SetCoalesce.
type inprocEngine struct {
	pool *simsvc.Pool
}

func newInprocEngine(workers, maxQueue int, legacy, coalesce bool) *inprocEngine {
	cache, err := simsvc.NewCache(0, "")
	if err != nil {
		log.Fatalf("winsimbench: %v", err)
	}
	cache.SetCoalesce(coalesce)
	pool := simsvc.NewPool(simsvc.PoolConfig{
		Workers:       workers,
		MaxQueue:      maxQueue,
		LegacyMetrics: legacy,
		Cache:         cache,
	})
	return &inprocEngine{pool: pool}
}

func (e *inprocEngine) submit(ctx context.Context, spec simsvc.JobSpec) outcome {
	j, err := e.pool.SubmitFrom("bench", spec)
	if err != nil {
		if errors.Is(err, simsvc.ErrPoolSaturated) {
			return outcome{shed: true}
		}
		return outcome{err: true}
	}
	if _, err := j.Wait(ctx); err != nil {
		if errors.Is(err, simsvc.ErrGuestFault) {
			return outcome{fault: true}
		}
		return outcome{err: true}
	}
	return outcome{ok: true}
}

func (e *inprocEngine) scrape() bool {
	m := e.pool.Metrics()
	_ = e.pool.WritePrometheus(io.Discard)
	return conserved(m)
}

func (e *inprocEngine) snapshot() (simsvc.MetricsSnapshot, error) { return e.pool.Metrics(), nil }

func (e *inprocEngine) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = e.pool.Drain(ctx)
}

// httpEngine drives a running winsimd. No retries: a load generator
// that silently retries is measuring its own backoff.
type httpEngine struct {
	base   string
	client *http.Client
}

func newHTTPEngine(base string) *httpEngine {
	return &httpEngine{base: base, client: &http.Client{Timeout: 2 * time.Minute}}
}

func (e *httpEngine) submit(ctx context.Context, spec simsvc.JobSpec) outcome {
	body, err := json.Marshal(map[string]any{"spec": spec})
	if err != nil {
		return outcome{err: true}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.base+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		return outcome{err: true}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(simsvc.ClientIDHeader, "winsimbench")
	resp, err := e.client.Do(req)
	if err != nil {
		return outcome{err: true}
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	switch {
	case resp.StatusCode < 300:
		return outcome{ok: true}
	case resp.StatusCode == http.StatusTooManyRequests:
		return outcome{shed: true}
	case resp.StatusCode == http.StatusUnprocessableEntity:
		return outcome{fault: true}
	default:
		return outcome{err: true}
	}
}

func (e *httpEngine) scrape() bool {
	// Text exposition first (the expensive render)...
	if resp, err := e.client.Get(e.base + "/metrics"); err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// ...then the JSON snapshot, which carries the invariant.
	m, err := e.snapshot()
	if err != nil {
		return true // transport trouble is not a conservation violation
	}
	return conserved(m)
}

func (e *httpEngine) snapshot() (simsvc.MetricsSnapshot, error) {
	resp, err := e.client.Get(e.base + "/metrics?format=json")
	if err != nil {
		return simsvc.MetricsSnapshot{}, err
	}
	defer resp.Body.Close()
	var m simsvc.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return simsvc.MetricsSnapshot{}, err
	}
	return m, nil
}

func (e *httpEngine) close() {}

// ---------------------------------------------------------------------
// The measured run.

// runResult is one measured window at one target rate — the unit of
// the BENCH_serve.json trajectory.
type runResult struct {
	Mix         string  `json:"mix"`
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	DurationSec float64 `json:"duration_sec"`

	Requests uint64 `json:"requests"`
	Answered uint64 `json:"answered"`
	Faults   uint64 `json:"faults"`
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors"`

	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`

	Scrapes       uint64 `json:"scrapes"`
	DroppedEvents uint64 `json:"dropped_events"`

	SLOOK     bool   `json:"slo_ok"`
	SLOReason string `json:"slo_reason,omitempty"`
}

type sloConfig struct {
	p99        time.Duration // 0 = no latency SLO
	minachieve float64       // fraction of target that must be achieved
}

// driveOnce runs one measured window: an open-loop pacer feeding a
// bounded worker set, with scraper goroutines reading metrics the
// whole time. Latencies are recorded per worker (no shared lock on the
// measurement path) and merged into one exact stats.Distribution.
func driveOnce(eng engine, mix string, rps float64, concurrency, scrapers int, duration time.Duration, slo sloConfig, seq *uint64) runResult {
	type record struct {
		lat stats.Distribution // microseconds
		out [4]uint64          // ok, fault, shed, err
	}
	records := make([]record, concurrency)

	reqCh := make(chan uint64, concurrency)
	stop := make(chan struct{})
	var dropped, scrapes atomic.Uint64

	var scrapeWG sync.WaitGroup
	for s := 0; s < scrapers; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !eng.scrape() {
					dropped.Add(1)
				}
				scrapes.Add(1)
			}
		}()
	}

	var workWG sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		workWG.Add(1)
		go func(w int) {
			defer workWG.Done()
			rec := &records[w]
			for i := range reqCh {
				spec := specFor(mix, i)
				t0 := time.Now()
				o := eng.submit(context.Background(), spec)
				lat := time.Since(t0)
				switch {
				case o.ok:
					rec.out[0]++
					rec.lat.Observe(uint64(lat.Microseconds()) + 1)
				case o.fault:
					rec.out[1]++
					rec.lat.Observe(uint64(lat.Microseconds()) + 1)
				case o.shed:
					rec.out[2]++
				default:
					rec.out[3]++
				}
			}
		}(w)
	}

	// Open-loop pacer: dispatch the number of requests the clock says
	// should exist by now. If the workers cannot keep up the pacer
	// blocks on the channel, and the shortfall shows up as achieved <
	// target — the "cannot sustain this rate" signal findmax ramps into.
	start := time.Now()
	var sent uint64
	for {
		elapsed := time.Since(start)
		if elapsed >= duration {
			break
		}
		due := uint64(elapsed.Seconds() * rps)
		for sent < due {
			reqCh <- atomic.AddUint64(seq, 1)
			sent++
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(reqCh)
	workWG.Wait()
	elapsed := time.Since(start)
	close(stop)
	scrapeWG.Wait()

	var merged stats.Distribution
	res := runResult{
		Mix:         mix,
		TargetRPS:   rps,
		DurationSec: elapsed.Seconds(),
		Requests:    sent,
		Scrapes:     scrapes.Load(),
	}
	for i := range records {
		merged.Merge(&records[i].lat)
		res.Answered += records[i].out[0]
		res.Faults += records[i].out[1]
		res.Shed += records[i].out[2]
		res.Errors += records[i].out[3]
	}
	res.AchievedRPS = float64(sent) / elapsed.Seconds()
	res.P50MS = float64(merged.Quantile(0.5)) / 1e3
	res.P90MS = float64(merged.Quantile(0.9)) / 1e3
	res.P99MS = float64(merged.Quantile(0.99)) / 1e3
	res.MaxMS = float64(merged.Max()) / 1e3
	res.MeanMS = merged.Mean() / 1e3
	res.DroppedEvents = dropped.Load()

	res.SLOOK = true
	switch {
	case res.DroppedEvents > 0:
		res.SLOOK, res.SLOReason = false, fmt.Sprintf("%d dropped metric events (conservation violated under scrape)", res.DroppedEvents)
	case res.Errors > 0:
		res.SLOOK, res.SLOReason = false, fmt.Sprintf("%d unexpected errors", res.Errors)
	case slo.p99 > 0 && res.P99MS > float64(slo.p99.Microseconds())/1e3:
		res.SLOOK, res.SLOReason = false, fmt.Sprintf("p99 %.2fms over SLO %.2fms", res.P99MS, float64(slo.p99.Microseconds())/1e3)
	case slo.minachieve > 0 && res.AchievedRPS < slo.minachieve*rps:
		res.SLOOK, res.SLOReason = false, fmt.Sprintf("achieved %.0f rps < %.0f%% of target %.0f", res.AchievedRPS, slo.minachieve*100, rps)
	}
	return res
}

// findMax ramps the rate until the SLO breaks and returns every step
// plus the highest compliant rate.
func findMax(eng engine, mix string, startRPS, rampFactor, maxRPS float64, concurrency, scrapers int, stepDur time.Duration, slo sloConfig, seq *uint64) ([]runResult, float64) {
	var steps []runResult
	var maxOK float64
	for rps := startRPS; rps <= maxRPS; rps *= rampFactor {
		step := driveOnce(eng, mix, rps, concurrency, scrapers, stepDur, slo, seq)
		steps = append(steps, step)
		log.Printf("winsimbench: %s @ %.0f rps -> achieved %.0f, p99 %.2fms, shed %d, dropped %d, slo_ok=%v %s",
			mix, rps, step.AchievedRPS, step.P99MS, step.Shed, step.DroppedEvents, step.SLOOK, step.SLOReason)
		if !step.SLOOK {
			break
		}
		maxOK = rps
	}
	return steps, maxOK
}

// benchRun is one serving-path configuration's full trajectory.
type benchRun struct {
	Name            string      `json:"name"`
	Metrics         string      `json:"metrics"`  // sharded | locked
	Coalesce        bool        `json:"coalesce"` // cache singleflight on?
	Workers         int         `json:"workers"`
	Concurrency     int         `json:"concurrency"`
	Scrapers        int         `json:"scrapers"`
	Steps           []runResult `json:"steps"`
	MaxCompliantRPS float64     `json:"max_compliant_rps"`
}

// benchFile is the BENCH_serve.json shape.
type benchFile struct {
	GeneratedUnix int64      `json:"generated_unix"`
	Host          string     `json:"host,omitempty"`
	SLOP99MS      float64    `json:"slo_p99_ms"`
	Runs          []benchRun `json:"runs"`
	Comparison    string     `json:"comparison,omitempty"`
}

func main() {
	url := flag.String("url", "", "winsimd base URL; empty drives an in-process pool")
	mix := flag.String("mix", "hot", "workload mix: hot, cold, traced, faulty or mixed")
	rps := flag.Float64("rps", 500, "target request rate (findmax: starting rate)")
	concurrency := flag.Int("concurrency", 32, "maximum in-flight requests")
	duration := flag.Duration("duration", 5*time.Second, "measured window (single-run mode)")
	scrapers := flag.Int("scrapers", 2, "concurrent /metrics scrape goroutines (the adversarial load)")
	workers := flag.Int("workers", 0, "in-process pool workers (0 = GOMAXPROCS)")
	maxQueue := flag.Int("maxqueue", 4096, "in-process pool queue bound")
	metricsMode := flag.String("metrics", "sharded", "in-process metrics recorder: sharded or locked")
	coalesce := flag.Bool("coalesce", true, "in-process cache miss coalescing")
	sloP99 := flag.Duration("slo-p99", 250*time.Millisecond, "p99 latency SLO (0 = none)")
	minAchieve := flag.Float64("slo-achieve", 0.95, "fraction of the target rate that must be achieved")
	findmax := flag.Bool("findmax", false, "ramp the rate until the SLO breaks; report the max compliant rate")
	rampFactor := flag.Float64("rampfactor", 1.6, "findmax rate multiplier per step")
	maxRPS := flag.Float64("maxrps", 200000, "findmax rate ceiling")
	stepDur := flag.Duration("stepdur", 3*time.Second, "findmax per-step window")
	ab := flag.Bool("ab", false, "in-process A/B: findmax on the locked baseline, then on the sharded path")
	out := flag.String("out", "", "write the BENCH_serve.json trajectory here")
	flag.Parse()

	if *metricsMode != "sharded" && *metricsMode != "locked" {
		log.Fatalf("winsimbench: -metrics %q (want sharded or locked)", *metricsMode)
	}
	slo := sloConfig{p99: *sloP99, minachieve: *minAchieve}
	file := benchFile{
		GeneratedUnix: time.Now().Unix(),
		SLOP99MS:      float64(sloP99.Microseconds()) / 1e3,
	}

	newEngine := func(legacy, coal bool) engine {
		if *url != "" {
			return newHTTPEngine(*url)
		}
		return newInprocEngine(*workers, *maxQueue, legacy, coal)
	}

	runOne := func(name string, legacy, coal bool) benchRun {
		eng := newEngine(legacy, coal)
		defer eng.close()
		var seq uint64
		// Warm the hot set so the measured window exercises the cache-hit
		// path instead of the first cold fill.
		if *mix == "hot" || *mix == "mixed" {
			eng.submit(context.Background(), specFor("hot", 0))
		}
		mode := "sharded"
		if legacy {
			mode = "locked"
		}
		run := benchRun{Name: name, Metrics: mode, Coalesce: coal,
			Workers: *workers, Concurrency: *concurrency, Scrapers: *scrapers}
		if *findmax || *ab {
			run.Steps, run.MaxCompliantRPS = findMax(eng, *mix, *rps, *rampFactor, *maxRPS, *concurrency, *scrapers, *stepDur, slo, &seq)
		} else {
			step := driveOnce(eng, *mix, *rps, *concurrency, *scrapers, *duration, slo, &seq)
			run.Steps = []runResult{step}
			if step.SLOOK {
				run.MaxCompliantRPS = step.TargetRPS
			}
		}
		return run
	}

	exitCode := 0
	if *ab {
		if *url != "" {
			log.Fatal("winsimbench: -ab measures both serving paths in-process; drop -url")
		}
		file.Host = "in-process"
		locked := runOne("locked-baseline", true, false)
		sharded := runOne("sharded-coalesced", false, true)
		file.Runs = []benchRun{locked, sharded}
		file.Comparison = fmt.Sprintf("sharded-coalesced sustains %.0f rps vs locked-baseline %.0f rps within SLO (%.2fx)",
			sharded.MaxCompliantRPS, locked.MaxCompliantRPS, ratio(sharded.MaxCompliantRPS, locked.MaxCompliantRPS))
		log.Printf("winsimbench: %s", file.Comparison)
	} else {
		file.Host = *url
		if *url == "" {
			file.Host = "in-process"
		}
		run := runOne("run", *metricsMode == "locked", *coalesce)
		file.Runs = []benchRun{run}
		last := run.Steps[len(run.Steps)-1]
		if !*findmax && !last.SLOOK {
			log.Printf("winsimbench: SLO BREACH: %s", last.SLOReason)
			exitCode = 1
		}
		if *findmax && run.MaxCompliantRPS == 0 {
			log.Printf("winsimbench: no rate satisfied the SLO")
			exitCode = 1
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			log.Fatalf("winsimbench: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("winsimbench: %v", err)
		}
		log.Printf("winsimbench: wrote %s", *out)
	} else {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(file)
	}
	os.Exit(exitCode)
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
