// Command asmrun assembles and executes a program written in the
// SPARC-subset assembly on the simulated register-window machine,
// printing console output (the "ta 2" putc trap), the final %o0, and
// optionally a disassembly listing or window statistics.
//
// Usage:
//
//	asmrun [-scheme SP] [-windows 8] [-entry start] [-list] [-stats] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cyclicwin"
	"cyclicwin/internal/isa"
)

func main() {
	schemeFlag := flag.String("scheme", "SP", "window management scheme: NS, SNP or SP")
	windows := flag.Int("windows", 8, "number of register windows (2..32)")
	entry := flag.String("entry", "start", "entry label")
	list := flag.Bool("list", false, "print a disassembly listing and exit")
	stats := flag.Bool("stats", false, "print window statistics")
	traceN := flag.Int("trace", 0, "print the last N window-management events")
	limit := flag.Uint64("limit", 100_000_000, "instruction limit (0 = none)")
	tierFlag := flag.String("tier", "", "interpreter tier: block, fast or slow (default block)")
	flag.Parse()

	if *tierFlag != "" {
		t, err := isa.ParseTier(*tierFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asmrun: %v\n", err)
			os.Exit(2)
		}
		isa.SetDefaultTier(t)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asmrun [flags] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmrun: %v\n", err)
		os.Exit(1)
	}
	prog, err := cyclicwin.Assemble(string(src), 0x1000)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmrun: %v\n", err)
		os.Exit(1)
	}

	if *list {
		for i, w := range prog.Words {
			addr := prog.Origin + uint32(4*i)
			fmt.Printf("%#06x  %08x  %s\n", addr, w, cyclicwin.Disassemble(w, addr))
		}
		return
	}

	var scheme cyclicwin.Scheme
	switch strings.ToUpper(*schemeFlag) {
	case "NS":
		scheme = cyclicwin.NS
	case "SNP":
		scheme = cyclicwin.SNP
	case "SP":
		scheme = cyclicwin.SP
	default:
		fmt.Fprintf(os.Stderr, "asmrun: unknown scheme %q\n", *schemeFlag)
		os.Exit(2)
	}

	m := cyclicwin.NewMachineOptions(scheme, *windows, cyclicwin.Options{TraceLimit: *traceN})
	cpu, err := m.RunProgram(prog, *entry, *limit)
	if cpu != nil && cpu.Console.Len() > 0 {
		os.Stdout.Write(cpu.Console.Bytes())
		if !strings.HasSuffix(cpu.Console.String(), "\n") {
			fmt.Println()
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%%o0 = %d (0x%x) after %d instructions\n", cpu.Reg(8), cpu.Reg(8), cpu.Steps)
	if *traceN > 0 {
		m.Trace().Render(os.Stderr)
	}
	if *stats {
		c := m.Counters()
		fmt.Fprintf(os.Stderr, "cycles %d, saves %d, restores %d, overflow traps %d, underflow traps %d\n",
			m.Cycles(), c.Saves, c.Restores, c.OverflowTraps, c.UnderflowTraps)
	}
}
