// Command spellcheck runs the paper's seven-thread spell checker on a
// LaTeX file (or the builtin synthetic draft) under a chosen window
// management scheme, printing the misspelled words and the machine
// statistics the paper reports.
//
// Usage:
//
//	spellcheck [-scheme NS|SNP|SP] [-windows 8] [-policy fifo|ws]
//	           [-m 4] [-n 4] [-stats] [file.tex]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cyclicwin"
	"cyclicwin/internal/corpus"
)

func main() {
	schemeFlag := flag.String("scheme", "SP", "window management scheme: NS, SNP or SP")
	windows := flag.Int("windows", 8, "number of register windows (2..32)")
	policyFlag := flag.String("policy", "fifo", "scheduling policy: fifo or ws (working set)")
	m := flag.Int("m", 4, "buffer size M (file-side streams S1, S4..S6)")
	n := flag.Int("n", 4, "buffer size N (spell-side streams S2, S3)")
	stats := flag.Bool("stats", false, "print machine statistics")
	flag.Parse()

	var scheme cyclicwin.Scheme
	switch strings.ToUpper(*schemeFlag) {
	case "NS":
		scheme = cyclicwin.NS
	case "SNP":
		scheme = cyclicwin.SNP
	case "SP":
		scheme = cyclicwin.SP
	default:
		fmt.Fprintf(os.Stderr, "spellcheck: unknown scheme %q\n", *schemeFlag)
		os.Exit(2)
	}
	policy := cyclicwin.FIFO
	if strings.EqualFold(*policyFlag, "ws") {
		policy = cyclicwin.WorkingSet
	}

	source := corpus.Draft()
	if flag.NArg() > 0 {
		var err error
		source, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "spellcheck: %v\n", err)
			os.Exit(1)
		}
	}

	mach := cyclicwin.NewMachineOptions(scheme, *windows, cyclicwin.Options{Policy: policy})
	p, err := mach.NewSpellPipeline(cyclicwin.SpellConfig{
		M: *m, N: *n,
		Source:        source,
		MainDict:      corpus.MainDict(),
		ForbiddenDict: corpus.ForbiddenDict(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "spellcheck: %v\n", err)
		os.Exit(2)
	}
	if err := mach.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "spellcheck: %v\n", err)
		os.Exit(1)
	}

	for _, w := range p.Misspelled() {
		fmt.Println(w)
	}
	if *stats {
		c := mach.Counters()
		fmt.Fprintf(os.Stderr, "scheme=%v windows=%d policy=%v M=%d N=%d\n", scheme, *windows, policy, *m, *n)
		fmt.Fprintf(os.Stderr, "cycles            %12d\n", mach.Cycles())
		fmt.Fprintf(os.Stderr, "context switches  %12d (avg %.1f cycles, %d with zero transfer)\n",
			c.Switches, c.AvgSwitchCycles(), c.ZeroTransferSwitches)
		fmt.Fprintf(os.Stderr, "saves/restores    %12d / %d\n", c.Saves, c.Restores)
		fmt.Fprintf(os.Stderr, "window traps      %12d overflow / %d underflow (probability %.4f)\n",
			c.OverflowTraps, c.UnderflowTraps, c.TrapProbability())
		fmt.Fprintf(os.Stderr, "windows moved     %12d by traps, %d by switches\n",
			c.TrapSaves+c.TrapRestores, c.SwitchSaves+c.SwitchRestores)
	}
}
