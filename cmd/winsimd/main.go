// Command winsimd serves the repository's simulations over HTTP: a
// worker pool executes submitted jobs concurrently and a
// content-addressed cache answers repeated specs without re-running.
//
// Usage:
//
//	winsimd [-addr :8091] [-workers N] [-cachedir DIR] [-cachesize N]
//	        [-timeout 10m] [-maxqueue 256] [-clientqueue N] [-maxqueuecost N]
//	        [-reqtimeout 2m] [-node URL] [-peers URL,URL] [-join URL]
//
// Several winsimd processes form a cluster: -peers lists the other
// members statically, or -join announces this node to a running member
// and learns the membership from it. Cluster members shard experiment
// cells across the ring by content hash and answer each other's cache
// misses over GET /v1/cache/{hash} before recomputing anything.
//
// Endpoints:
//
//	POST /v1/jobs             submit a spec or batch (?wait=1 blocks for results)
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/trace  Chrome trace of a cell submitted with "trace": true
//	GET  /v1/cache/{hash}     locally cached result by content hash (peer fill)
//	GET  /v1/experiments      experiment catalog
//	GET  /v1/cluster/join     POST: announce a member; GET /v1/cluster/members lists them
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus text exposition (?format=json for JSON)
//	GET  /debug/pprof/        live profiling (only with -pprof)
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight jobs before exiting; a second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cyclicwin/internal/cluster"
	"cyclicwin/internal/isa"
	"cyclicwin/internal/netfault"
	"cyclicwin/internal/simsvc"
)

// selfURL derives the node's advertised URL from the listen address
// when -node is not given: ":8091" → "http://127.0.0.1:8091".
func selfURL(addr string) string {
	host, port := "127.0.0.1", ""
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		if h := addr[:i]; h != "" && h != "0.0.0.0" && h != "[::]" {
			host = h
		}
		port = addr[i+1:]
	}
	return cluster.NormalizeAddr(host + ":" + port)
}

// splitPeers parses a comma-separated peer list, normalizing each.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = cluster.NormalizeAddr(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cachedir", "", "directory for the on-disk result store (empty = memory only)")
	cacheSize := flag.Int("cachesize", 0, "in-memory cache entries (0 = default)")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-job execution timeout (0 = none)")
	maxQueue := flag.Int("maxqueue", 256, "queued-job bound; submissions beyond it get 429 (0 = unbounded)")
	clientQueue := flag.Int("clientqueue", 0, "per-client queued-job share, keyed by the X-Client-ID header; over-share submissions get 429 (0 = off)")
	maxQueueCost := flag.Uint64("maxqueuecost", 0, "summed cost-estimate bound over the queue (threads x windows x text length); jobs whose estimate would exceed it get 429 (0 = off)")
	legacyMetrics := flag.Bool("legacymetrics", false, "use the pre-sharding single-mutex metrics recorder (benchmark baseline only)")
	noCoalesce := flag.Bool("nocoalesce", false, "disable per-key coalescing of concurrent cache misses (benchmark baseline only)")
	reqTimeout := flag.Duration("reqtimeout", 2*time.Minute, "per-request deadline, including ?wait=1 blocking (0 = none)")
	drainFor := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	nodeURL := flag.String("node", "", "advertised URL of this node (default derived from -addr)")
	peers := flag.String("peers", "", "comma-separated URLs of the other cluster members")
	join := flag.String("join", "", "URL of a running member to announce this node to")
	tierFlag := flag.String("tier", "", "interpreter tier for guest machine code run in-process: block, fast or slow (default block)")
	netfaultSpec := flag.String("netfault", "", "inject seeded network faults into this node's outbound requests, e.g. \"seed=42,drop=0.1,delay=30ms:0.25,corrupt=0.05\" (empty = off)")
	sweepBudget := flag.Duration("sweepbudget", 0, "per-sweep routing deadline for distributed experiments; expired cells run inline (0 = none)")
	flag.Parse()

	if *tierFlag != "" {
		t, err := isa.ParseTier(*tierFlag)
		if err != nil {
			log.Fatalf("winsimd: %v", err)
		}
		isa.SetDefaultTier(t)
	}

	cache, err := simsvc.NewCache(*cacheSize, *cacheDir)
	if err != nil {
		log.Fatalf("winsimd: %v", err)
	}

	self := *nodeURL
	if self == "" {
		self = selfURL(*addr)
	}
	nf, err := netfault.FromSpec(*netfaultSpec)
	if err != nil {
		log.Fatalf("winsimd: %v", err)
	}
	nodeCfg := cluster.NodeConfig{
		Logf: log.Printf,
	}
	if nf != nil {
		nodeCfg.Transport = nf
		log.Printf("winsimd: netfault armed: %s", *netfaultSpec)
	}
	node := cluster.NewNode(self, splitPeers(*peers), nodeCfg)
	defer node.Close()
	cache.SetRemote(node.PeerCache())

	clustered := *peers != "" || *join != ""
	var coord *cluster.Coordinator
	if *noCoalesce {
		cache.SetCoalesce(false)
	}
	poolCfg := simsvc.PoolConfig{
		Workers:        *workers,
		JobTimeout:     *timeout,
		MaxQueue:       *maxQueue,
		PerClientQueue: *clientQueue,
		MaxQueueCost:   *maxQueueCost,
		LegacyMetrics:  *legacyMetrics,
		Cache:          cache,
	}
	if clustered {
		// In a cluster, named experiments fan their cells out across the
		// ring instead of running them all on this node's pool.
		coord = cluster.NewCoordinator(node, cluster.CoordinatorConfig{
			Cache:        cache,
			CellTimeout:  *timeout,
			SweepTimeout: *sweepBudget,
			Logf:         log.Printf,
		})
		poolCfg.CellRunner = coord.Runner()
	}
	pool := simsvc.NewPool(poolCfg)
	if coord != nil {
		// Inline (self-owned) cells still count toward this node's
		// simulation metrics.
		coord.OnLocalCell = pool.ObserveSim
	}

	api := simsvc.NewServer(pool)
	api.SetRequestTimeout(*reqTimeout)
	api.Handle("POST /v1/cluster/join", node.HandleJoin)
	api.Handle("GET /v1/cluster/members", node.HandleMembers)
	api.AddMetricsWriter(node.WritePrometheus)
	node.StartProber()
	if *join != "" {
		node.JoinLoop(cluster.NormalizeAddr(*join), 0)
	}
	var handler http.Handler = api
	if *enablePprof {
		// Off by default: the profile endpoints expose internals and cost
		// CPU, so they are opt-in rather than wired into the API server.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("winsimd: serving on %s (%d workers, cache dir %q)", *addr, pool.Workers(), *cacheDir)

	select {
	case err := <-errCh:
		log.Fatalf("winsimd: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("winsimd: shutting down, draining in-flight jobs (budget %v)", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("winsimd: http shutdown: %v", err)
	}
	if err := pool.Drain(shutdownCtx); err != nil {
		log.Printf("winsimd: drain incomplete: %v", err)
		os.Exit(1)
	}
	m := pool.Metrics()
	fmt.Printf("winsimd: done — %d jobs done, %d failed, cache hit ratio %.2f\n",
		m.JobsDone, m.JobsFailed, m.CacheHitRatio)
}
