// Command winsimd serves the repository's simulations over HTTP: a
// worker pool executes submitted jobs concurrently and a
// content-addressed cache answers repeated specs without re-running.
//
// Usage:
//
//	winsimd [-addr :8091] [-workers N] [-cachedir DIR] [-cachesize N]
//	        [-timeout 10m] [-maxqueue 256] [-reqtimeout 2m]
//
// Endpoints:
//
//	POST /v1/jobs             submit a spec or batch (?wait=1 blocks for results)
//	GET  /v1/jobs/{id}        job status and result
//	GET  /v1/jobs/{id}/trace  Chrome trace of a cell submitted with "trace": true
//	GET  /v1/experiments      experiment catalog
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus text exposition (?format=json for JSON)
//	GET  /debug/pprof/        live profiling (only with -pprof)
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight jobs before exiting; a second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cyclicwin/internal/simsvc"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cachedir", "", "directory for the on-disk result store (empty = memory only)")
	cacheSize := flag.Int("cachesize", 0, "in-memory cache entries (0 = default)")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-job execution timeout (0 = none)")
	maxQueue := flag.Int("maxqueue", 256, "queued-job bound; submissions beyond it get 429 (0 = unbounded)")
	reqTimeout := flag.Duration("reqtimeout", 2*time.Minute, "per-request deadline, including ?wait=1 blocking (0 = none)")
	drainFor := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	cache, err := simsvc.NewCache(*cacheSize, *cacheDir)
	if err != nil {
		log.Fatalf("winsimd: %v", err)
	}
	pool := simsvc.NewPool(simsvc.PoolConfig{
		Workers:    *workers,
		JobTimeout: *timeout,
		MaxQueue:   *maxQueue,
		Cache:      cache,
	})

	api := simsvc.NewServer(pool)
	api.SetRequestTimeout(*reqTimeout)
	var handler http.Handler = api
	if *enablePprof {
		// Off by default: the profile endpoints expose internals and cost
		// CPU, so they are opt-in rather than wired into the API server.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("winsimd: serving on %s (%d workers, cache dir %q)", *addr, pool.Workers(), *cacheDir)

	select {
	case err := <-errCh:
		log.Fatalf("winsimd: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("winsimd: shutting down, draining in-flight jobs (budget %v)", *drainFor)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("winsimd: http shutdown: %v", err)
	}
	if err := pool.Drain(shutdownCtx); err != nil {
		log.Printf("winsimd: drain incomplete: %v", err)
		os.Exit(1)
	}
	m := pool.Metrics()
	fmt.Printf("winsimd: done — %d jobs done, %d failed, cache hit ratio %.2f\n",
		m.JobsDone, m.JobsFailed, m.CacheHitRatio)
}
