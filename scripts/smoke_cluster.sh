#!/usr/bin/env bash
# smoke_cluster.sh — end-to-end distributed-sweep smoke test.
#
# Boots a 3-node winsimd cluster (one seed member, two joiners), then
# verifies the distributed path against the serial golden output:
#   1. `winsim -cluster` renders fig11 byte-identical to the serial run.
#   2. A repeat sweep is answered entirely by the peer-fill cache tier:
#      peer fills > 0 and the workers execute zero new jobs.
#   3. A worker killed (-9) mid-sweep is routed around: the sweep
#      completes and still matches the serial golden.
#   4. The /metrics exposition carries the winsimd_cluster_* families
#      and winsimd_build_info, and the survivors mark the killed member
#      unhealthy.
#
# Requires only the go toolchain plus curl.
set -euo pipefail

cd "$(dirname "$0")/.."

A1="127.0.0.1:8101"; A2="127.0.0.1:8102"; A3="127.0.0.1:8103"
B1="http://$A1"; B2="http://$A2"; B3="http://$A3"
TMP="$(mktemp -d)"
PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null || true; wait "${PIDS[@]}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build =="
go build -o "$TMP/winsimd" ./cmd/winsimd
go build -o "$TMP/winsim" ./cmd/winsim

echo "== boot a 3-node cluster =="
"$TMP/winsimd" -addr "$A1" -workers 2 -peers "$B2,$B3" &
PIDS+=($!)
"$TMP/winsimd" -addr "$A2" -workers 2 -join "$B1" &
W2_PID=$!
PIDS+=($W2_PID)
"$TMP/winsimd" -addr "$A3" -workers 2 -join "$B1" &
PIDS+=($!)

for base in "$B1" "$B2" "$B3"; do
  for i in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "worker $base did not come up" >&2; exit 1; fi
    sleep 0.2
  done
done

echo "== membership converges to 3 members =="
for i in $(seq 1 50); do
  N="$(curl -fsS "$B1/v1/cluster/members" | grep -c 'http://' || true)"
  if [ "$N" = 3 ]; then break; fi
  if [ "$i" = 50 ]; then echo "member list stuck at $N members" >&2; exit 1; fi
  sleep 0.2
done
echo "3 members known to the seed"

echo "== serial goldens =="
"$TMP/winsim" -exp fig11 -parallel=false >"$TMP/fig11.golden"
"$TMP/winsim" -exp fig14 -parallel=false >"$TMP/fig14.golden"

echo "== distributed fig11 matches the serial golden =="
"$TMP/winsim" -exp fig11 -cluster "$B1" >"$TMP/fig11.cluster" 2>"$TMP/fig11.err"
diff -u "$TMP/fig11.golden" "$TMP/fig11.cluster"
grep -q 'cells routed' "$TMP/fig11.err"
echo "byte-identical"

echo "== repeat sweep is served by peer fill, nothing recomputed =="
JOBS_BEFORE=0
for base in "$B1" "$B2" "$B3"; do
  J="$(curl -fsS "$base/metrics" | sed -n 's/^winsimd_jobs_total{state="done"} \([0-9]*\)$/\1/p')"
  JOBS_BEFORE=$((JOBS_BEFORE + J))
done
"$TMP/winsim" -exp fig11 -cluster "$B1" >"$TMP/fig11.repeat" 2>"$TMP/repeat.err"
diff -u "$TMP/fig11.golden" "$TMP/fig11.repeat"
FILLS="$(sed -n 's/.* \([0-9]*\) peer fills$/\1/p' "$TMP/repeat.err")"
[ -n "$FILLS" ] && [ "$FILLS" -gt 0 ] || { echo "repeat sweep made no peer fills:" >&2; cat "$TMP/repeat.err" >&2; exit 1; }
JOBS_AFTER=0
for base in "$B1" "$B2" "$B3"; do
  J="$(curl -fsS "$base/metrics" | sed -n 's/^winsimd_jobs_total{state="done"} \([0-9]*\)$/\1/p')"
  JOBS_AFTER=$((JOBS_AFTER + J))
done
[ "$JOBS_AFTER" = "$JOBS_BEFORE" ] || { echo "repeat sweep recomputed: jobs_done $JOBS_BEFORE -> $JOBS_AFTER" >&2; exit 1; }
echo "$FILLS peer fills, 0 recomputes"

echo "== kill a worker mid-sweep; the sweep must still complete =="
"$TMP/winsim" -exp fig14 -cluster "$B1" >"$TMP/fig14.cluster" 2>"$TMP/fig14.err" &
SWEEP_PID=$!
sleep 1
kill -9 "$W2_PID" 2>/dev/null || true
wait "$SWEEP_PID"
diff -u "$TMP/fig14.golden" "$TMP/fig14.cluster"
echo "sweep survived the kill, output byte-identical"

echo "== cluster metrics families =="
curl -fsS "$B1/metrics" >"$TMP/metrics.prom"
grep -q '^# TYPE winsimd_cluster_members gauge$' "$TMP/metrics.prom"
grep -q '^winsimd_cluster_cells_local_total ' "$TMP/metrics.prom"
grep -q '^winsimd_cluster_peer_fills_total ' "$TMP/metrics.prom"
grep -q '^winsimd_cluster_ring_rebalances_total ' "$TMP/metrics.prom"
grep -q '^winsimd_cluster_joins_total ' "$TMP/metrics.prom"
grep -q '^winsimd_build_info{version="' "$TMP/metrics.prom"

echo "== survivors mark the killed member unhealthy =="
for i in $(seq 1 75); do
  if curl -fsS "$B1/metrics" | grep -q "^winsimd_cluster_members{member=\"$B2\"} 0$"; then break; fi
  if [ "$i" = 75 ]; then
    echo "seed never marked $B2 unhealthy" >&2
    curl -fsS "$B1/metrics" | grep winsimd_cluster_members >&2
    exit 1
  fi
  sleep 0.2
done
echo "killed member routed around"

echo "SMOKE OK"
