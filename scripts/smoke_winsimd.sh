#!/usr/bin/env bash
# smoke_winsimd.sh — end-to-end observability smoke test.
#
# Boots winsimd, submits a traced cell job, then verifies the two
# observability surfaces this repository exposes:
#   1. GET /metrics serves parseable Prometheus text exposition that
#      includes the per-scheme window-trap counters and the switch-cost
#      histogram.
#   2. GET /v1/jobs/{id}/trace serves parseable Chrome trace_event JSON.
# Finally it runs `winsim -trace` and checks the written file parses.
#
# Requires only the go toolchain plus curl; JSON validation uses python3
# when available and falls back to grep checks otherwise.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:8099"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build =="
go build -o "$TMP/winsimd" ./cmd/winsimd
go build -o "$TMP/winsim" ./cmd/winsim

echo "== boot winsimd on $ADDR =="
"$TMP/winsimd" -addr "$ADDR" -workers 2 &
SERVER_PID=$!
for i in $(seq 1 50); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then echo "winsimd did not come up" >&2; exit 1; fi
  sleep 0.2
done

echo "== submit a traced cell job =="
curl -fsS -X POST "$BASE/v1/jobs?wait=1" -H 'Content-Type: application/json' \
  -d '{"experiment":"cell","scheme":"SP","windows":6,"behavior":"high-fine","draft":2000,"dict":3001,"trace":true}' \
  >"$TMP/submit.json"
JOB_ID="$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$TMP/submit.json" | head -1)"
[ -n "$JOB_ID" ] || { echo "no job id in submit response" >&2; exit 1; }
grep -q '"status": *"done"' "$TMP/submit.json" || { echo "job not done" >&2; exit 1; }
echo "job $JOB_ID done"

echo "== scrape /metrics (Prometheus text) =="
curl -fsS "$BASE/metrics" >"$TMP/metrics.prom"
grep -q '^# TYPE winsimd_jobs_total counter$' "$TMP/metrics.prom"
grep -q '^winsim_window_traps_total{scheme="SP",kind="overflow"}' "$TMP/metrics.prom"
grep -q '^winsim_window_traps_total{scheme="SP",kind="underflow"}' "$TMP/metrics.prom"
grep -q '^winsim_switch_cost_cycles_bucket{scheme="SP",le="+Inf"}' "$TMP/metrics.prom"
grep -q '^winsim_switch_cost_cycles_count{scheme="SP"}' "$TMP/metrics.prom"
echo "exposition contains trap counters and switch-cost histogram"

echo "== /metrics?format=json still serves the JSON snapshot =="
curl -fsS "$BASE/metrics?format=json" | grep -q '"jobs_done"'

echo "== fetch the job trace (Chrome trace_event JSON) =="
curl -fsS "$BASE/v1/jobs/$JOB_ID/trace" >"$TMP/trace.json"
grep -q '"traceEvents"' "$TMP/trace.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TMP/trace.json" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
evs = t["traceEvents"]
assert evs, "empty traceEvents"
assert any(e["ph"] == "X" for e in evs), "no duration events"
assert any(e["ph"] == "M" for e in evs), "no metadata events"
print(f"trace parses: {len(evs)} events")
EOF
else
  echo "python3 unavailable; grep-level trace check only"
fi

echo "== winsim -trace writes a parseable file =="
"$TMP/winsim" -exp fig11 -windows 4 -trace "$TMP/cli-trace.json" >/dev/null
grep -q '"traceEvents"' "$TMP/cli-trace.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; t=json.load(open(sys.argv[1])); assert t['traceEvents']" "$TMP/cli-trace.json"
fi

echo "== graceful shutdown =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"

echo "SMOKE OK"
