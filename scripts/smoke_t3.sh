#!/usr/bin/env bash
# smoke_t3.sh — T3-scale scheduling smoke test (DESIGN.md §14).
# Verifies under the race detector that the scaled-up scheduler really
# exercises its new machinery:
#   1. TestT3Smoke: a 128-thread preemptive sweep across all schemes and
#      policies on 4 migrating cores, with migration and preemption
#      counters asserted nonzero and every pipeline checksum exact.
#   2. TestParity: the same chain workload agrees across NS/SNP/SP and
#      the Reference oracle at 64 threads under FIFO/WS/PRIO, plain,
#      preemptive and migrating.
#   3. winsim -exp t3threads renders the crossover figure and winsim
#      -quantum/-policy rewrite cells without breaking a sweep.
#
# Requires only the go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== 128-thread preemptive multi-core sweep under -race =="
go test -race -count=1 -run 'TestT3Smoke' ./internal/harness/

echo "== kernel-level scheme/policy parity under -race (short) =="
go test -race -count=1 -short -run 'TestParity' ./internal/check/

echo "== t3threads figure renders =="
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
go run ./cmd/winsim -exp t3threads -windows 8 >"$TMP/t3.out"
grep -q 'T3 crossover' "$TMP/t3.out"
grep -q ' threads' "$TMP/t3.out"
grep -q '     256 ' "$TMP/t3.out"

echo "== -policy/-quantum overrides run a sweep =="
go run ./cmd/winsim -exp t3threads -windows 8 -policy PRIO -quantum 200 >"$TMP/t3prio.out"
grep -q 'T3 crossover' "$TMP/t3prio.out"

echo "T3 SMOKE OK"
