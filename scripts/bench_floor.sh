#!/usr/bin/env bash
# Interpreter benchmark regression floor: re-runs the block tier of
# BenchmarkCPUStep and fails if the measured throughput drops more than
# 10% below the committed BENCH_interp.json record. The committed value
# and the fresh measurement come from different machines, so the floor
# fraction is overridable (BENCH_FLOOR_FRAC, default 0.9) and the check
# takes the best of three runs to damp scheduler noise.
set -euo pipefail
cd "$(dirname "$0")/.."

committed=$(sed -n 's/.*"block_minstr_per_s": *\([0-9.]*\).*/\1/p' BENCH_interp.json | head -1)
if [ -z "$committed" ]; then
    echo "bench_floor: no block_minstr_per_s in BENCH_interp.json" >&2
    exit 1
fi

out=$(go test -run '^$' -bench 'BenchmarkCPUStep/block' -benchtime 1s -count 3 ./internal/isa/)
printf '%s\n' "$out"

best=$(printf '%s\n' "$out" | awk '
    /BenchmarkCPUStep\/block/ {
        for (i = 1; i < NF; i++)
            if ($(i+1) == "Minstr/s" && $i + 0 > m) m = $i + 0
    }
    END { print m + 0 }')
if [ "$best" = "0" ]; then
    echo "bench_floor: could not parse a Minstr/s value from the benchmark output" >&2
    exit 1
fi

frac=${BENCH_FLOOR_FRAC:-0.9}
floor=$(awk -v c="$committed" -v f="$frac" 'BEGIN { printf "%.2f", c * f }')
echo "bench_floor: block tier ${best} Minstr/s, committed ${committed}, floor ${floor} (${frac}x)"
if ! awk -v b="$best" -v fl="$floor" 'BEGIN { exit !(b + 0 >= fl + 0) }'; then
    echo "bench_floor: FAIL — BenchmarkCPUStep/block at ${best} Minstr/s is below the ${floor} floor" >&2
    exit 1
fi
echo "bench_floor: OK"
