#!/usr/bin/env bash
# smoke_serve.sh — sustained-load serving smoke test.
#
# Boots winsimd with all three admission tiers armed, drives a short
# mixed winsimbench load (cache-hot, cache-cold, traced, faulty, mixed
# spec sizes) against it over HTTP with /metrics scrapers running the
# whole time, and fails on an SLO breach or any dropped metric event
# (winsimbench checks the conservation invariant accepted ==
# queued+running+terminal on every scrape and exits nonzero if it ever
# fails to hold). Then it runs the in-process sharded-vs-locked A/B
# ramp and writes the BENCH_serve.json trajectory CI uploads.
#
# Requires only the go toolchain plus curl; JSON validation uses
# python3 when available and falls back to grep checks otherwise.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:8098"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build =="
go build -o "$TMP/winsimd" ./cmd/winsimd
go build -o "$TMP/winsimbench" ./cmd/winsimbench

echo "== boot winsimd on $ADDR with admission tiers armed =="
"$TMP/winsimd" -addr "$ADDR" -workers 2 -maxqueue 512 -clientqueue 256 -maxqueuecost 2000000000 &
SERVER_PID=$!
for i in $(seq 1 50); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then echo "winsimd did not come up" >&2; exit 1; fi
  sleep 0.2
done

echo "== mixed-load SLO run over HTTP (scrapers hammering /metrics throughout) =="
# Generous ceilings — CI machines are slow and shared; the hard
# assertions are "no dropped metric events" and "no unexpected errors".
"$TMP/winsimbench" -url "$BASE" -mix mixed -rps 100 -duration 3s -concurrency 16 \
  -scrapers 2 -slo-p99 5s -slo-achieve 0.5 -out "$TMP/bench_http.json"
grep -q '"dropped_events": 0' "$TMP/bench_http.json"
grep -q '"slo_ok": true' "$TMP/bench_http.json"

echo "== new serving metric families present after load =="
curl -fsS "$BASE/metrics" >"$TMP/metrics.prom"
grep -q '^# TYPE winsimd_jobs_cached_total counter$' "$TMP/metrics.prom"
grep -q '^winsimd_admission_rejects_total{reason="queue_full"}' "$TMP/metrics.prom"
grep -q '^winsimd_admission_rejects_total{reason="client_quota"}' "$TMP/metrics.prom"
grep -q '^winsimd_admission_rejects_total{reason="cost"}' "$TMP/metrics.prom"
grep -q '^# TYPE winsimd_cache_coalesced_total counter$' "$TMP/metrics.prom"
grep -q '^# TYPE winsimd_queue_cost gauge$' "$TMP/metrics.prom"
echo "admission + cache-coalescing families exported"

echo "== cache-hit latency is recorded nonzero =="
# The mixed run is half cache-hot; a snapshot with cached jobs and a
# zero p50 would mean the hard-0µs regression came back.
curl -fsS "$BASE/metrics?format=json" >"$TMP/metrics.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TMP/metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["jobs_cached"] > 0, "mixed run produced no cache-answered jobs"
assert m["job_latency_p50_ms"] > 0, "cache-hit latency recorded as 0 again"
acc = m["jobs_accepted"]
total = m["jobs_queued"] + m["jobs_running"] + m["jobs_done"] + m["jobs_failed"] + m["jobs_canceled"]
assert acc == total, f"conservation broken: accepted={acc} sum={total}"
print(f"jobs_cached={m['jobs_cached']} p50={m['job_latency_p50_ms']}ms conserved({acc})")
EOF
else
  grep -q '"jobs_cached": [1-9]' "$TMP/metrics.json"
fi

echo "== graceful shutdown =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true

echo "== in-process sharded-vs-locked A/B ramp -> BENCH_serve.json =="
# Short steps keep CI fast; the committed BENCH_serve.json carries a
# longer calibrated run. The ramp is not gated on the comparison
# (machine-dependent) — only on both paths producing clean trajectories.
"$TMP/winsimbench" -ab -mix hot -rps 500 -rampfactor 2 -stepdur 1s -maxrps 500000 \
  -concurrency 16 -scrapers 2 -slo-p99 100ms -out BENCH_serve.json
grep -q '"comparison"' BENCH_serve.json
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_serve.json <<'EOF'
import json
f = json.load(open("BENCH_serve.json"))
assert len(f["runs"]) == 2, "expected locked + sharded runs"
for run in f["runs"]:
    for step in run["steps"]:
        assert step["dropped_events"] == 0, f"{run['name']}: dropped metric events at {step['target_rps']} rps"
        assert step["errors"] == 0, f"{run['name']}: unexpected errors at {step['target_rps']} rps"
sharded = next(r for r in f["runs"] if r["metrics"] == "sharded")
assert sharded["max_compliant_rps"] > 0, "sharded path satisfied no rate"
print(f"A/B ok: {f['comparison']}")
EOF
fi

echo "SMOKE OK"
