#!/usr/bin/env bash
# smoke_chaos.sh — network-chaos smoke test for the cluster resilience
# layer (DESIGN.md §12). Boots a 3-node winsimd cluster and drives it
# through injected network faults, verifying that correctness and
# liveness survive:
#   1. A distributed fig11 sweep under seeded drops (12%), latency and
#      body corruption renders bytes identical to the serial run, and
#      -leakcheck proves no goroutine outlives the sweep.
#   2. A repeat sweep under the same chaos is served by peer fill;
#      corrupted fill bodies are refused (peer rejects > 0) and the
#      output still matches.
#   3. One worker runs with -netfault body corruption on its own
#      outbound fetches: an experiment fanned out from it rejects the
#      corrupted peer fills (winsimd_cluster_peer_rejects_total > 0 on
#      /metrics) yet completes correctly.
#   4. Killing a worker opens its circuit breaker on the survivors
#      (winsimd_cluster_breaker_state = 1); restarting it drives the
#      breaker through a half-open trial back to closed (state 0,
#      trials > 0) — all visible on /metrics.
#   5. A sweep under an intentionally tiny -budget reports cells past
#      the deadline, skips routing, and still prints the golden bytes.
#
# Requires only the go toolchain plus curl.
set -euo pipefail

cd "$(dirname "$0")/.."

A1="127.0.0.1:8111"; A2="127.0.0.1:8112"; A3="127.0.0.1:8113"
B1="http://$A1"; B2="http://$A2"; B3="http://$A3"
TMP="$(mktemp -d)"
PIDS=()
trap 'kill "${PIDS[@]}" 2>/dev/null || true; wait "${PIDS[@]}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build =="
go build -o "$TMP/winsimd" ./cmd/winsimd
go build -o "$TMP/winsim" ./cmd/winsim

echo "== boot a 3-node cluster (worker 3 corrupts its own fetches) =="
"$TMP/winsimd" -addr "$A1" -workers 2 -peers "$B2,$B3" &
PIDS+=($!)
"$TMP/winsimd" -addr "$A2" -workers 2 -join "$B1" &
W2_PID=$!
PIDS+=($W2_PID)
"$TMP/winsimd" -addr "$A3" -workers 2 -join "$B1" -netfault "seed=5,corrupt=0.3" &
PIDS+=($!)

for base in "$B1" "$B2" "$B3"; do
  for i in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "worker $base did not come up" >&2; exit 1; fi
    sleep 0.2
  done
done
for i in $(seq 1 50); do
  N="$(curl -fsS "$B1/v1/cluster/members" | grep -c 'http://' || true)"
  if [ "$N" = 3 ]; then break; fi
  if [ "$i" = 50 ]; then echo "member list stuck at $N members" >&2; exit 1; fi
  sleep 0.2
done
echo "3 members up"

echo "== serial golden =="
"$TMP/winsim" -exp fig11 -parallel=false >"$TMP/fig11.golden"

CHAOS="seed=42,drop=0.12,delay=20ms:0.2,corrupt=0.1,err=0.03"

echo "== distributed fig11 under chaos ($CHAOS) matches the golden =="
"$TMP/winsim" -exp fig11 -cluster "$B1" -netfault "$CHAOS" -leakcheck \
  >"$TMP/fig11.chaos" 2>"$TMP/chaos.err"
diff -u "$TMP/fig11.golden" "$TMP/fig11.chaos"
grep -q 'netfault armed' "$TMP/chaos.err"
grep -q 'leakcheck: clean' "$TMP/chaos.err"
DROPPED="$(sed -n 's/.*netfault — [0-9]* requests: \([0-9]*\) dropped.*/\1/p' "$TMP/chaos.err")"
[ -n "$DROPPED" ] && [ "$DROPPED" -gt 0 ] || { echo "chaos sweep dropped nothing:" >&2; cat "$TMP/chaos.err" >&2; exit 1; }
echo "byte-identical under chaos ($DROPPED requests dropped), no goroutine leaks"

echo "== repeat sweep under chaos: corrupted peer fills are refused =="
"$TMP/winsim" -exp fig11 -cluster "$B1" -netfault "$CHAOS" -leakcheck \
  >"$TMP/fig11.repeat" 2>"$TMP/repeat.err"
diff -u "$TMP/fig11.golden" "$TMP/fig11.repeat"
grep -q 'leakcheck: clean' "$TMP/repeat.err"
FILLS="$(sed -n 's/.* \([0-9]*\) peer fills$/\1/p' "$TMP/repeat.err")"
REJECTS="$(sed -n 's/.*resilience — \([0-9]*\) peer rejects.*/\1/p' "$TMP/repeat.err")"
[ -n "$FILLS" ] && [ "$FILLS" -gt 0 ] || { echo "repeat sweep made no peer fills:" >&2; cat "$TMP/repeat.err" >&2; exit 1; }
[ -n "$REJECTS" ] && [ "$REJECTS" -gt 0 ] || { echo "10% corruption produced no peer rejects:" >&2; cat "$TMP/repeat.err" >&2; exit 1; }
echo "$FILLS peer fills, $REJECTS corrupted fills refused, output intact"

echo "== worker 3 fans out an experiment through its corrupting link =="
# Worker 3's own outbound fetches corrupt 30% of bodies; its peer fills
# of cells cached on workers 1 and 2 must be verified and the corrupt
# ones rejected — visible on its /metrics — while the experiment still
# completes (rejected fills are recomputed or refetched). Corruption is
# probabilistic per body, so allow a few attempts.
for i in 1 2 3; do
  curl -fsS -X POST "$B3/v1/jobs?wait=1" -H 'Content-Type: application/json' \
    -d '{"experiment":"fig11"}' >"$TMP/w3job.json"
  grep -q '"status": *"done"' "$TMP/w3job.json" || { echo "worker-3 experiment failed" >&2; cat "$TMP/w3job.json" >&2; exit 1; }
  W3REJ="$(curl -fsS "$B3/metrics" | sed -n 's/^winsimd_cluster_peer_rejects_total \([0-9]*\)$/\1/p')"
  if [ -n "$W3REJ" ] && [ "$W3REJ" -gt 0 ]; then break; fi
done
[ -n "$W3REJ" ] && [ "$W3REJ" -gt 0 ] || { echo "worker 3 never rejected a corrupted peer fill" >&2; curl -fsS "$B3/metrics" | grep peer >&2 || true; exit 1; }
echo "worker 3 rejected $W3REJ corrupted peer fills and still finished the experiment"

echo "== breaker metric families =="
curl -fsS "$B1/metrics" >"$TMP/metrics.prom"
grep -q '^# TYPE winsimd_cluster_breaker_state gauge$' "$TMP/metrics.prom"
grep -q '^# TYPE winsimd_cluster_breaker_opens_total counter$' "$TMP/metrics.prom"
grep -q '^# TYPE winsimd_cluster_breaker_trials_total counter$' "$TMP/metrics.prom"
grep -q '^winsimd_cluster_peer_rejects_total ' "$TMP/metrics.prom"
grep -q '^winsimd_cluster_peer_hedges_total ' "$TMP/metrics.prom"
grep -q '^winsimd_cluster_deadline_expired_total ' "$TMP/metrics.prom"
echo "resilience families exposed"

echo "== kill worker 2: its breaker must open on the seed =="
kill -9 "$W2_PID" 2>/dev/null || true
for i in $(seq 1 100); do
  curl -fsS "$B1/metrics" >"$TMP/m.prom" 2>/dev/null || true
  if grep -q "^winsimd_cluster_breaker_state{member=\"$B2\"} 1$" "$TMP/m.prom"; then break; fi
  if [ "$i" = 100 ]; then
    echo "breaker never opened for the killed member" >&2
    grep breaker "$TMP/m.prom" >&2 || true
    exit 1
  fi
  sleep 0.2
done
OPENS="$(sed -n "s|^winsimd_cluster_breaker_opens_total{member=\"$B2\"} \([0-9]*\)$|\1|p" "$TMP/m.prom")"
echo "breaker open for $B2 (opens_total=$OPENS)"

echo "== restart worker 2: half-open trial must close the breaker =="
"$TMP/winsimd" -addr "$A2" -workers 2 -join "$B1" &
PIDS+=($!)
for i in $(seq 1 150); do
  curl -fsS "$B1/metrics" >"$TMP/m.prom" 2>/dev/null || true
  if grep -q "^winsimd_cluster_breaker_state{member=\"$B2\"} 0$" "$TMP/m.prom"; then break; fi
  if [ "$i" = 150 ]; then
    echo "breaker never closed after the member came back" >&2
    grep breaker "$TMP/m.prom" >&2 || true
    exit 1
  fi
  sleep 0.2
done
TRIALS="$(sed -n "s|^winsimd_cluster_breaker_trials_total{member=\"$B2\"} \([0-9]*\)$|\1|p" "$TMP/m.prom")"
[ -n "$TRIALS" ] && [ "$TRIALS" -gt 0 ] || { echo "breaker closed without a half-open trial" >&2; exit 1; }
echo "breaker closed again after $TRIALS half-open trial(s)"

echo "== sweep budget: expired cells run inline, bytes still golden =="
"$TMP/winsim" -exp fig11 -cluster "$B1" -budget 1ms -leakcheck \
  >"$TMP/fig11.budget" 2>"$TMP/budget.err"
diff -u "$TMP/fig11.golden" "$TMP/fig11.budget"
grep -q 'leakcheck: clean' "$TMP/budget.err"
EXPIRED="$(sed -n 's/.* \([0-9]*\) cells past the sweep budget$/\1/p' "$TMP/budget.err")"
[ -n "$EXPIRED" ] && [ "$EXPIRED" -gt 0 ] || { echo "a 1ms budget expired no cells:" >&2; cat "$TMP/budget.err" >&2; exit 1; }
echo "$EXPIRED cells honored the deadline inline, output byte-identical"

echo "CHAOS SMOKE OK"
